"""Heterogeneous-node (server speed) simulation tests."""

import pytest

from repro.dists import Exponential
from repro.models import MM1K
from repro.sim import (
    DeterministicTimeout,
    PoissonArrivals,
    RandomPolicy,
    Simulation,
    TagsPolicy,
)


def run(policy, capacities, speeds, lam=4.0, mu=5.0, seed=0, t_end=30_000.0):
    sim = Simulation(
        PoissonArrivals(lam),
        Exponential(mu),
        policy,
        capacities,
        speeds=speeds,
        seed=seed,
    )
    return sim.run(t_end=t_end, warmup=1_000.0)


class TestSpeeds:
    def test_default_unit_speed(self):
        a = run(RandomPolicy(weights=(1.0,)), (8,), None)
        b = run(RandomPolicy(weights=(1.0,)), (8,), (1.0,))
        assert a.mean_jobs == pytest.approx(b.mean_jobs)  # same seed/paths

    def test_speed_s_is_mm1k_with_scaled_mu(self):
        """A speed-2 node serving Exponential(mu) demands is an M/M/1/K
        with rate 2 mu."""
        lam, mu, K = 4.0, 5.0, 8
        res = run(RandomPolicy(weights=(1.0,)), (K,), (2.0,), lam=lam, mu=mu)
        ana = MM1K(lam, 2 * mu, K)
        assert res.mean_jobs == pytest.approx(ana.mean_jobs, rel=0.06)
        assert res.throughput == pytest.approx(ana.throughput, rel=0.03)

    def test_fast_node2_rescues_tags(self):
        """Speeding up node 2 shortens the long jobs' second service, so
        mean response improves."""
        policy = lambda: TagsPolicy(timeouts=(DeterministicTimeout(0.1),))
        slow = run(policy(), (10, 10), (1.0, 1.0), lam=6.0, mu=10.0)
        fast = run(policy(), (10, 10), (1.0, 3.0), lam=6.0, mu=10.0)
        assert fast.mean_response_time < slow.mean_response_time

    def test_timeout_races_wall_clock(self):
        """On a speed-10 node, a demand of 0.5 takes 0.05 < timeout 0.1,
        so nothing ever times out."""
        from repro.dists import Erlang

        policy = TagsPolicy(timeouts=(DeterministicTimeout(0.1),))
        demand = Erlang(100, 200.0)  # ~0.5, nearly deterministic
        sim = Simulation(
            PoissonArrivals(1.0), demand, policy, (10, 10),
            speeds=(10.0, 1.0), seed=3,
        )
        res = sim.run(t_end=5_000.0, warmup=100.0)
        assert res.mean_queue_lengths[1] == pytest.approx(0.0, abs=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError, match="one speed per node"):
            Simulation(
                PoissonArrivals(1.0), Exponential(1.0),
                RandomPolicy(), (5, 5), speeds=(1.0,),
            )
        with pytest.raises(ValueError, match="positive"):
            Simulation(
                PoissonArrivals(1.0), Exponential(1.0),
                RandomPolicy(), (5, 5), speeds=(1.0, 0.0),
            )
