"""Arrival-process and timeout-sampler tests."""

import numpy as np
import pytest

from repro.sim import DeterministicTimeout, ErlangTimeout, MMPPArrivals, PoissonArrivals


class TestPoisson:
    def test_mean_rate(self):
        p = PoissonArrivals(4.0)
        rng = np.random.default_rng(0)
        gaps = [p.next_interarrival(rng) for _ in range(40_000)]
        assert np.mean(gaps) == pytest.approx(0.25, rel=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)
        # NaN passes a bare `rate <= 0`: the message must name the field
        with pytest.raises(ValueError, match="PoissonArrivals.rate"):
            PoissonArrivals(float("nan"))
        with pytest.raises(ValueError, match="PoissonArrivals.rate"):
            PoissonArrivals(float("inf"))


class TestMMPP:
    def test_mean_rate_property(self):
        m = MMPPArrivals(rate0=10.0, rate1=1.0, switch01=0.5, switch10=0.5)
        assert m.mean_rate == pytest.approx(5.5)

    def test_empirical_rate(self):
        m = MMPPArrivals(rate0=10.0, rate1=1.0, switch01=2.0, switch10=2.0)
        rng = np.random.default_rng(1)
        total = sum(m.next_interarrival(rng) for _ in range(40_000))
        assert 40_000 / total == pytest.approx(m.mean_rate, rel=0.05)

    def test_ipp_burstier_than_poisson(self):
        """On/off arrivals: squared CV of inter-arrival times exceeds 1."""
        m = MMPPArrivals(rate0=20.0, rate1=0.0, switch01=1.0, switch10=1.0)
        rng = np.random.default_rng(2)
        gaps = np.array([m.next_interarrival(rng) for _ in range(40_000)])
        scv = gaps.var() / gaps.mean() ** 2
        assert scv > 1.3

    def test_validation(self):
        with pytest.raises(ValueError):
            MMPPArrivals(0.0, 0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            MMPPArrivals(1.0, 1.0, 0.0, 1.0)
        with pytest.raises(ValueError, match="MMPPArrivals.rate1"):
            MMPPArrivals(1.0, float("nan"), 1.0, 1.0)
        with pytest.raises(ValueError, match="MMPPArrivals.switch10"):
            MMPPArrivals(1.0, 1.0, 1.0, float("nan"))
        with pytest.raises(ValueError, match="MMPPArrivals.rate0"):
            MMPPArrivals(-1.0, 1.0, 1.0, 1.0)


class TestTimeouts:
    def test_deterministic(self):
        d = DeterministicTimeout(0.12)
        rng = np.random.default_rng(0)
        assert d.sample(rng) == 0.12
        assert d.mean == 0.12

    def test_erlang_mean(self):
        e = ErlangTimeout(6, 51.0)
        rng = np.random.default_rng(0)
        xs = np.array([e.sample(rng) for _ in range(20_000)])
        assert xs.mean() == pytest.approx(6 / 51, rel=0.03)
        assert e.mean == pytest.approx(6 / 51)

    def test_validation(self):
        with pytest.raises(ValueError):
            DeterministicTimeout(0.0)
        with pytest.raises(ValueError):
            ErlangTimeout(0, 1.0)
        with pytest.raises(ValueError, match="DeterministicTimeout.duration"):
            DeterministicTimeout(float("nan"))
        with pytest.raises(ValueError, match="ErlangTimeout.t"):
            ErlangTimeout(6, float("nan"))
