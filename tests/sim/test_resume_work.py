"""Regression tests for resume-policy work accounting.

``_Job.remaining`` must carry over *exactly* the unserved work when a
``resume=True`` policy moves a killed job, and restart semantics must
re-serve the full demand.  A fully deterministic single-job scenario
pins the arithmetic: demand 10, node-1 timeout 4, so resume completes
the job in 4 + 6 and restart in 4 + 10.
"""

import numpy as np
import pytest

from repro.sim import DeterministicTimeout, Simulation, TagsPolicy
from repro.sim.runner import _Job


class ConstantDemand:
    """Every job has exactly the same service demand."""

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def sample(self, n: int, rng) -> np.ndarray:
        return np.full(n, self.value)


class SingleArrival:
    """One arrival at t=1; the next is pushed beyond any horizon."""

    def __init__(self) -> None:
        self.calls = 0

    def next_interarrival(self, rng) -> float:
        self.calls += 1
        return 1.0 if self.calls == 1 else 1e9


def one_job_response(resume: bool, demand: float = 10.0, tau: float = 4.0) -> float:
    sim = Simulation(
        SingleArrival(),
        ConstantDemand(demand),
        TagsPolicy(timeouts=(DeterministicTimeout(tau),), resume=resume),
        capacities=(5, 5),
    )
    res = sim.run(t_end=100.0)
    assert res.completed == 1
    return float(res.response_times[0])


class TestJobTyping:
    def test_remaining_defaults_to_demand(self):
        job = _Job(arrival_time=0.0, demand=7.5)
        assert job.remaining == 7.5

    def test_explicit_remaining_is_kept(self):
        job = _Job(arrival_time=0.0, demand=7.5, remaining=2.5)
        assert job.remaining == 2.5

    def test_annotation_is_optional_float(self):
        # the dataclass must declare the None default honestly
        assert _Job.__dataclass_fields__["remaining"].type == "float | None"


class TestResumeCarriesRemainingWork:
    def test_resume_serves_exactly_the_remaining_work(self):
        """Kill at tau=4 leaves 10-4=6 units; resume completes at
        arrival + 4 + 6."""
        assert one_job_response(resume=True) == pytest.approx(10.0)

    def test_restart_reserves_the_full_demand(self):
        """Restart loses the 4 served units: arrival + 4 + 10."""
        assert one_job_response(resume=False) == pytest.approx(14.0)

    def test_two_kills_chain_remaining_exactly(self):
        """Across two resume kills the remaining work telescopes:
        10 -> 6 -> 2, completing at 1 + 4 + 4 + 2."""
        sim = Simulation(
            SingleArrival(),
            ConstantDemand(10.0),
            TagsPolicy(
                timeouts=(DeterministicTimeout(4.0), DeterministicTimeout(4.0)),
                resume=True,
            ),
            capacities=(5, 5, 5),
        )
        res = sim.run(t_end=100.0)
        assert res.completed == 1
        assert float(res.response_times[0]) == pytest.approx(10.0)

    def test_speed_scaling_resumes_in_work_units(self):
        """remaining is tracked in *work* units: at node speed 2 a
        tau=4 kill removes 8 units of the demand-10 job, leaving 2."""
        sim = Simulation(
            SingleArrival(),
            ConstantDemand(10.0),
            TagsPolicy(timeouts=(DeterministicTimeout(4.0),), resume=True),
            capacities=(5, 5),
            speeds=(2.0, 1.0),
        )
        res = sim.run(t_end=100.0)
        assert res.completed == 1
        # arrival + 4 (killed at node 1) + 2 remaining at speed 1
        assert float(res.response_times[0]) == pytest.approx(6.0)
