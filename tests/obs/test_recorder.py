"""Recorder core: spans, counters, gauges, traces, globals, env config,
and the drain/merge protocol the sweep workers use."""

import os
import subprocess
import sys

import pytest

from repro import obs
from repro.obs import NullRecorder, Recorder, SpanRecord


class TestGlobals:
    def test_default_is_null(self):
        rec = obs.recorder()
        assert isinstance(rec, NullRecorder)
        assert rec.enabled is False

    def test_use_swaps_and_restores(self):
        before = obs.recorder()
        with obs.use(Recorder()) as rec:
            assert obs.recorder() is rec
            assert rec.enabled
        assert obs.recorder() is before

    def test_use_restores_on_error(self):
        before = obs.recorder()
        with pytest.raises(RuntimeError):
            with obs.use(Recorder()):
                raise RuntimeError("boom")
        assert obs.recorder() is before

    def test_install_none_restores_null(self):
        obs.install(Recorder())
        try:
            assert obs.recorder().enabled
        finally:
            obs.install(None)
        assert isinstance(obs.recorder(), NullRecorder)


class TestSpans:
    def test_nesting_via_stack(self):
        rec = Recorder()
        with rec.span("outer") as outer:
            with rec.span("inner"):
                pass
        inner_rec, outer_rec = rec.spans  # completion order
        assert inner_rec.name == "inner"
        assert inner_rec.parent_id == outer_rec.span_id
        assert outer_rec.parent_id is None

    def test_set_attaches_attrs_mid_region(self):
        rec = Recorder()
        with rec.span("s", a=1) as sp:
            sp.set(b=2)
        assert rec.spans[0].attrs == {"a": 1, "b": 2}

    def test_error_annotates_span(self):
        rec = Recorder()
        with pytest.raises(ValueError):
            with rec.span("s"):
                raise ValueError
        assert rec.spans[0].attrs["error"] == "ValueError"

    def test_record_span_parents_to_open_span(self):
        rec = Recorder()
        with rec.span("open") as sp:
            manual = rec.record_span("manual", 0.0, 1.0, k="v")
        assert manual.parent_id == sp.span_id
        assert rec.find_spans("manual")[0].attrs == {"k": "v"}

    def test_adopt_assigns_id_and_parent(self):
        rec = Recorder()
        span = SpanRecord(name="pt", t0=0.0, duration=0.5)
        with rec.span("sweep"):
            rec.adopt(span)
        assert span.span_id > 0
        assert span.parent_id == rec.find_spans("sweep")[0].span_id

    def test_null_span_is_inert(self):
        rec = NullRecorder()
        with rec.span("anything", x=1) as sp:
            sp.set(y=2)
        assert rec.spans == []


class TestCountersGaugesTraces:
    def test_counters_aggregate_by_name_and_attrs(self):
        rec = Recorder()
        rec.add("c")
        rec.add("c", 4)
        rec.add("c", 2, node=1)
        assert rec.counter("c") == 5
        assert rec.counter("c", node=1) == 2
        assert rec.counter_total("c") == 7
        assert rec.counter("absent") == 0

    def test_gauges_track_min_max_mean_last(self):
        rec = Recorder()
        for v in (4.0, 1.0, 7.0):
            rec.gauge("g", v)
        g = rec.gauges[("g", ())]
        assert (g.count, g.min, g.max, g.last) == (3, 1.0, 7.0, 7.0)
        assert g.mean == pytest.approx(4.0)

    def test_traces_keep_series(self):
        rec = Recorder()
        rec.trace("t", [(1, 0.5), (2, 0.25)], method="power")
        assert rec.traces[0].n_points == 2
        assert rec.traces[0].attrs == {"method": "power"}


class TestDrainMerge:
    def make_child_payload(self):
        child = Recorder()
        with child.span("work", chunk=0):
            child.add("solves", 3)
            child.gauge("q", 2.0)
            child.trace("resid", [(1, 0.1)])
        return child.drain()

    def test_drain_empties_child(self):
        child = Recorder()
        child.add("c")
        payload = child.drain()
        assert child.n_events == 0
        assert payload["counters"]

    def test_merge_attaches_roots_to_open_span(self):
        parent = Recorder()
        with parent.span("sweep") as sp:
            parent.merge(self.make_child_payload())
        work = parent.find_spans("work")[0]
        assert work.parent_id == sp.span_id

    def test_merge_remaps_ids_without_collision(self):
        parent = Recorder()
        with parent.span("a"):
            pass
        payload = self.make_child_payload()
        parent.merge(payload)
        ids = [s.span_id for s in parent.spans]
        assert len(ids) == len(set(ids))

    def test_merge_aggregates_counters_and_gauges(self):
        parent = Recorder()
        parent.add("solves", 1)
        parent.merge(self.make_child_payload())
        parent.merge(self.make_child_payload())
        assert parent.counter("solves") == 7
        assert parent.gauges[("q", ())].count == 2
        assert len(parent.traces) == 2

    def test_merge_none_is_noop(self):
        parent = Recorder()
        parent.merge(None)
        assert parent.n_events == 0


class TestCoverage:
    def test_coverage_of_back_to_back_roots(self):
        rec = Recorder()
        rec.record_span("a", 0.0, 1.0)
        rec.record_span("b", 1.0, 1.0)
        assert rec.wall_time() == pytest.approx(2.0)
        assert rec.coverage() == pytest.approx(1.0)

    def test_gap_lowers_coverage(self):
        rec = Recorder()
        rec.record_span("a", 0.0, 1.0)
        rec.record_span("b", 3.0, 1.0)
        assert rec.coverage() == pytest.approx(0.5)

    def test_children_do_not_double_count(self):
        rec = Recorder()
        with rec.span("root"):
            rec.record_span("child", 0.0, 100.0)
        assert rec.coverage() <= 1.0


class TestEnvConfiguration:
    def run_child(self, env_value, code):
        env = dict(os.environ, REPRO_OBS=env_value)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        return subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        )

    def test_record_installs_recorder(self):
        proc = self.run_child(
            "record",
            "from repro import obs; print(type(obs.recorder()).__name__)",
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "Recorder"

    def test_unset_like_values_stay_null(self):
        for value in ("", "off", "0", "none"):
            proc = self.run_child(
                value,
                "from repro import obs; print(type(obs.recorder()).__name__)",
            )
            assert proc.returncode == 0, proc.stderr
            assert proc.stdout.strip() == "NullRecorder"

    def test_jsonl_exports_at_exit(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        proc = self.run_child(
            f"jsonl:{out}",
            "from repro import obs; obs.recorder().add('c', 2)",
        )
        assert proc.returncode == 0, proc.stderr
        assert '"counter"' in out.read_text()

    def test_jsonl_skips_empty_run(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        proc = self.run_child(f"jsonl:{out}", "pass")
        assert proc.returncode == 0, proc.stderr
        assert not out.exists()

    def test_bad_value_raises(self):
        proc = self.run_child("bogus", "import repro.obs")
        assert proc.returncode != 0
        assert "REPRO_OBS" in proc.stderr
