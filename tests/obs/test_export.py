"""Exporters: JSONL event log, iteration-trace CSV, console summary."""

import csv
import json

import pytest

from repro import obs
from repro.obs import Recorder
from repro.obs.export import events


def recorded():
    rec = Recorder()
    with rec.span("outer", method="gth"):
        rec.record_span("inner", rec.t_origin, 0.5)
        rec.add("hits", 3)
        rec.add("hits", 1, node=0)
        rec.gauge("queue", 2.0)
        rec.gauge("queue", 4.0)
        rec.trace("resid", [(1, 1e-2), (2, 1e-4)], method="power")
    return rec


class TestEvents:
    def test_one_event_per_record(self):
        evs = events(recorded())
        by_type = {}
        for e in evs:
            by_type.setdefault(e["type"], []).append(e)
        assert len(by_type["span"]) == 2
        assert len(by_type["counter"]) == 2
        assert len(by_type["gauge"]) == 1
        assert len(by_type["trace"]) == 1

    def test_span_times_relative_to_origin(self):
        evs = [e for e in events(recorded()) if e["type"] == "span"]
        inner = next(e for e in evs if e["name"] == "inner")
        assert inner["t0"] == pytest.approx(0.0)
        assert inner["parent"] is not None

    def test_counter_attrs_survive(self):
        evs = [e for e in events(recorded()) if e["type"] == "counter"]
        with_node = next(e for e in evs if e["attrs"])
        assert with_node["attrs"] == {"node": 0} and with_node["value"] == 1

    def test_all_events_json_serialisable(self):
        for e in events(recorded()):
            json.loads(json.dumps(e, default=str))


class TestWriteJsonl:
    def test_round_trips_through_json(self, tmp_path):
        path = tmp_path / "t.jsonl"
        n = obs.write_jsonl(recorded(), path)
        lines = path.read_text().splitlines()
        assert len(lines) == n
        names = {json.loads(l)["name"] for l in lines}
        assert {"outer", "inner", "hits", "queue", "resid"} <= names

    def test_appends_rather_than_truncates(self, tmp_path):
        path = tmp_path / "t.jsonl"
        n1 = obs.write_jsonl(recorded(), path)
        n2 = obs.write_jsonl(recorded(), path)
        assert len(path.read_text().splitlines()) == n1 + n2

    def test_empty_recorder_writes_nothing(self, tmp_path):
        path = tmp_path / "t.jsonl"
        assert obs.write_jsonl(Recorder(), path) == 0
        assert not path.exists()


class TestTracesToCsv:
    def test_rows_flatten_series(self, tmp_path):
        path = tmp_path / "t.csv"
        n = obs.traces_to_csv(recorded(), path)
        with open(path, newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert n == len(rows) == 2
        assert rows[0]["trace"] == "resid"
        assert json.loads(rows[0]["attrs"]) == {"method": "power"}
        assert [float(r["value"]) for r in rows] == [1e-2, 1e-4]
        assert [int(r["step"]) for r in rows] == [1, 2]


class TestFormatSummary:
    def test_mentions_every_primitive(self):
        text = obs.format_summary(recorded())
        assert "2 spans" in text and "2 counters" in text
        assert "1 gauges" in text and "1 traces" in text
        for token in ("outer", "hits{node=0}", "queue", "resid{method=power}"):
            assert token in text, token

    def test_reports_coverage(self):
        text = obs.format_summary(recorded())
        assert "span coverage" in text and "%" in text

    def test_empty_recorder_is_one_line(self):
        text = obs.format_summary(Recorder())
        assert text.startswith("obs summary: 0 spans")
        assert "\n" not in text
