"""Instrumentation across the library: solvers, state-space builders, and
the simulator all file spans/counters/traces when a recorder is enabled,
and stay silent (with empty buffers) when it is not."""

import numpy as np
import pytest

from repro import obs
from repro.ctmc.bfs import bfs_generator
from repro.ctmc.steady import (
    SteadyStateError,
    steady_state,
    steady_state_gauss_seidel,
    steady_state_power,
)
from repro.dists import Exponential
from repro.models import TagsExponential
from repro.pepa import explore, parse_model
from repro.sim import PoissonArrivals, RandomPolicy, Simulation, replicate

MM1K_PEPA = """
lam = 3.0; mu = 5.0;
Q0 = (arrive, lam).Q1;
Q1 = (arrive, lam).Q2 + (serve, mu).Q0;
Q2 = (arrive, lam).Q3 + (serve, mu).Q1;
Q3 = (serve, mu).Q2 + (drop, lam).Q3;
Q0;
"""


@pytest.fixture
def chain():
    return TagsExponential(lam=5.0, mu=10.0, t=51.0, n=4, K1=3, K2=3).generator


class TestSolverSpans:
    @pytest.mark.parametrize("method", ["gth", "direct", "power", "gauss_seidel", "gmres"])
    def test_each_method_records_one_span(self, chain, method):
        with obs.use(obs.Recorder()) as rec:
            steady_state(chain, method=method)
        spans = rec.find_spans("steady_state")
        assert len(spans) == 1
        assert spans[0].attrs["method"] == method
        assert spans[0].attrs["n"] == chain.n_states
        assert spans[0].duration > 0

    @pytest.mark.parametrize("method", ["power", "gauss_seidel", "gmres"])
    def test_iterative_methods_emit_residual_trace(self, chain, method):
        with obs.use(obs.Recorder()) as rec:
            steady_state(chain, method=method)
        trace = next(t for t in rec.traces if t.name == f"steady_state.{method}")
        assert trace.n_points >= 1
        steps = [s for s, _ in trace.series]
        assert steps == sorted(steps)
        assert all(v >= 0 for _, v in trace.series)
        span = rec.find_spans("steady_state")[0]
        assert span.attrs["iterations"] == steps[-1]

    def test_trace_converges_downwards(self, chain):
        with obs.use(obs.Recorder()) as rec:
            steady_state(chain, method="gauss_seidel")
        series = rec.traces[0].series
        assert series[-1][1] < series[0][1]

    def test_solvers_silent_without_recorder(self, chain):
        rec = obs.recorder()
        assert not rec.enabled
        steady_state(chain, method="gauss_seidel")
        assert rec.spans == [] and rec.traces == []


class TestNonConvergenceDiagnostics:
    """Satellite: failed iterative solves must report how far they got."""

    def test_power_reports_iterations_and_residual(self, chain):
        with pytest.raises(SteadyStateError) as exc:
            steady_state_power(chain, max_iter=5)
        msg = str(exc.value)
        assert "5 iterations" in msg
        assert "achieved residual" in msg and "target" in msg

    def test_gauss_seidel_reports_iterations_and_residual(self, chain):
        with pytest.raises(SteadyStateError) as exc:
            steady_state_gauss_seidel(chain, max_iter=2)
        msg = str(exc.value)
        assert "2 sweeps" in msg or "2 iterations" in msg
        assert "achieved residual" in msg

    def test_failed_solve_records_no_span(self, chain):
        with obs.use(obs.Recorder()) as rec:
            with pytest.raises(SteadyStateError):
                steady_state_power(chain, max_iter=5)
        assert rec.find_spans("steady_state") == []


class TestStateSpaceBuilds:
    def test_pepa_explore_span_and_counters(self):
        # default engine: the compiled fast path emits pepa.explore.fast;
        # out-of-fragment models fall back and emit pepa.explore
        with obs.use(obs.Recorder()) as rec:
            space = explore(parse_model(MM1K_PEPA))
        spans = rec.find_spans("pepa.explore.fast") + rec.find_spans(
            "pepa.explore"
        )
        span = spans[0]
        assert span.attrs["states"] == space.n_states == 4
        assert rec.counter("pepa.states") == 4
        assert rec.counter("pepa.transitions") == span.attrs["transitions"]

    def test_pepa_interpreter_span(self):
        with obs.use(obs.Recorder()) as rec:
            space = explore(parse_model(MM1K_PEPA), engine="interpreter")
        span = rec.find_spans("pepa.explore")[0]
        assert span.attrs["states"] == space.n_states == 4

    def test_pepa_compile_span(self):
        with obs.use(obs.Recorder()) as rec:
            explore(parse_model(MM1K_PEPA), engine="compiled")
        assert rec.find_spans("pepa.compile")
        assert rec.find_spans("pepa.explore.fast")

    def test_pepa_frontier_trace_sums_to_states(self):
        with obs.use(obs.Recorder()) as rec:
            space = explore(parse_model(MM1K_PEPA))
        trace = next(t for t in rec.traces if t.name == "pepa.explore.frontier")
        assert sum(size for _, size in trace.series) == space.n_states

    def test_bfs_generator_span_and_counters(self):
        def ring(n):
            return lambda s: [("step", 1.0, ((s[0] + 1) % n,))]

        with obs.use(obs.Recorder()) as rec:
            gen, states, _ = bfs_generator((0,), ring(5))
        span = rec.find_spans("ctmc.bfs")[0]
        assert span.attrs["states"] == len(states) == 5
        assert rec.counter("ctmc.bfs.states") == 5
        assert rec.counter("ctmc.bfs.transitions") == 5


class TestSimulatorInstrumentation:
    def make_sim(self, seed=0):
        return Simulation(
            PoissonArrivals(4.0),
            Exponential(5.0),
            RandomPolicy(weights=(1.0,)),
            (8,),
            seed=seed,
        )

    def test_run_span_and_counters_match_result(self):
        with obs.use(obs.Recorder()) as rec:
            res = self.make_sim().run(t_end=200.0, warmup=20.0)
        span = rec.find_spans("sim.run")[0]
        assert span.attrs["t_end"] == 200.0
        assert rec.counter("sim.completed") == res.completed
        assert rec.counter("sim.offered") == res.offered
        assert rec.counter("sim.dropped.arrival") == res.dropped_arrival

    def test_queue_gauge_tracks_mean(self):
        with obs.use(obs.Recorder()) as rec:
            res = self.make_sim().run(t_end=200.0, warmup=20.0)
        key = ("sim.mean_queue_length", (("node", 0),))
        assert rec.gauges[key].last == pytest.approx(res.mean_queue_lengths[0])

    def test_replicate_wraps_each_rep_in_a_span(self):
        with obs.use(obs.Recorder()) as rec:
            replicate(self.make_sim, n_reps=3, t_end=100.0, warmup=10.0)
        reps = rec.find_spans("sim.replication")
        assert [s.attrs["rep"] for s in reps] == [0, 1, 2]
        runs = rec.find_spans("sim.run")
        rep_ids = {s.span_id for s in reps}
        assert all(r.parent_id in rep_ids for r in runs)
