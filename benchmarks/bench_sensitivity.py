"""Experiment X13: how sensitive is TAGS to its timeout, really?

The paper (Section 5): TAGS "is also quite sensitive to t, and when
poorly tuned ... the throughput falls significantly", and the H2 optimum
sits far from the exponential one.  We quantify both with elasticities
and 5%-degradation tolerance bands on the exact chains.
"""

from repro.approx.sensitivity import metric_elasticity, tuning_tolerance
from repro.experiments import render_table
from repro.experiments.config import h2_service_fig9
from repro.models import TagsExponential, TagsHyperExponential


def test_timeout_tolerance_bands(once):
    def compute():
        rows = []
        # exponential, lam=11 (overloaded -> throughput matters)
        f_exp = lambda t: TagsExponential(lam=11, mu=10, t=t, n=6, K1=10, K2=10)
        band = tuning_tolerance(
            f_exp, 52.0, "throughput", maximise=True, degradation=0.05,
            x_min=1.0, x_max=5000.0,
        )
        rows.append(["exponential, X", band.lo, 52.0, band.hi, band.relative_width])

        # H2 (Figure 9-10), throughput
        mu1, mu2 = (float(r) for r in h2_service_fig9().rates)
        f_h2 = lambda t: TagsHyperExponential(
            lam=11, alpha=0.99, mu1=mu1, mu2=mu2, t=t, n=6, K1=10, K2=10
        )
        band2 = tuning_tolerance(
            f_h2, 20.0, "throughput", maximise=True, degradation=0.05,
            x_min=1.0, x_max=5000.0,
        )
        rows.append(["H2, X", band2.lo, 20.0, band2.hi, band2.relative_width])
        return rows

    rows = once(compute)
    print()
    print("X13: timeout bands within 5% of optimal throughput")
    print(
        render_table(
            ["system", "t lo", "t opt", "t hi", "rel width"], rows
        )
    )
    # both systems tolerate a generous band around the optimum...
    assert all(r[4] > 0.5 for r in rows)
    # ...but the H2 system's band does not stretch to arbitrarily small t
    # (the paper's t=4 failure case lies outside it)
    assert rows[1][1] > 4.0


def test_elasticities(once):
    def compute():
        f = lambda t: TagsExponential(lam=11, mu=10, t=t, n=6, K1=10, K2=10)
        return [
            [t, metric_elasticity(f, t, "throughput")]
            for t in (5.0, 20.0, 52.0, 200.0, 1000.0)
        ]

    rows = once(compute)
    print()
    print("X13b: throughput elasticity vs t (lam=11, exponential)")
    print(render_table(["t", "elasticity d%X/d%t"], rows))
    es = {r[0]: r[1] for r in rows}
    # rising side, flat top, falling tail
    assert es[5.0] > 0
    assert abs(es[52.0]) < 0.02
    assert es[1000.0] < 0
