"""Experiment X16: restart vs resume -- the paper's open problem, answered.

Section 6: "To the knowledge of the author nobody has yet studied the
costs and benefits of resume against restart following job transfer.  As
such this remains an interesting open problem."

We quantify it in both analysis regimes:

* exact CTMCs for exponential demand (restart = Figure 3, resume = the
  same chain without the repeat phase);
* simulation with deterministic timeouts for the H2 and bounded-Pareto
  workloads where the restart penalty interacts with the tail.
"""

import numpy as np

from repro.dists import BoundedPareto, Exponential
from repro.experiments import render_table
from repro.experiments.config import h2_service_fig9
from repro.models import TagsExponential
from repro.sim import DeterministicTimeout, PoissonArrivals, Simulation, TagsPolicy


def test_restart_vs_resume_exact(once):
    def compute():
        rows = []
        for lam in (5.0, 9.0, 11.0, 13.0):
            restart = TagsExponential(lam=lam, mu=10, t=42, n=6).metrics()
            resume = TagsExponential(
                lam=lam, mu=10, t=42, n=6, restart_work=False
            ).metrics()
            rows.append(
                [lam, restart.response_time, resume.response_time,
                 restart.throughput, resume.throughput]
            )
        return rows

    rows = once(compute)
    print()
    print("X16a: restart (TAGS) vs resume (migration), exponential demand, "
          "exact CTMCs (t=42, n=6)")
    print(
        render_table(
            ["lambda", "W restart", "W resume", "X restart", "X resume"],
            rows,
        )
    )
    for lam, wr, wm, xr, xm in rows:
        assert wm <= wr + 1e-12
        assert xm >= xr - 1e-12
    # the restart cost grows with load
    penalties = [r[1] / r[2] for r in rows]
    assert penalties[-1] > penalties[0]


def test_restart_vs_resume_heavy_tail(once):
    """Simulation: the answer changes character with the tail weight."""
    lam = 8.0

    def run(resume, demand, tau):
        policy = TagsPolicy(
            timeouts=(DeterministicTimeout(tau),), resume=resume
        )
        sim = Simulation(
            PoissonArrivals(lam), demand, policy, (10, 10), seed=21
        )
        return sim.run(t_end=40_000.0, warmup=2_000.0)

    def compute():
        cases = [
            ("exponential", Exponential(10.0), 0.12),
            ("H2 (Fig 9)", h2_service_fig9(), 0.5),
            ("bounded Pareto", BoundedPareto(0.0325, 100.0, 1.1), 0.3),
        ]
        rows = []
        for name, demand, tau in cases:
            restart = run(False, demand, tau)
            resume = run(True, demand, tau)
            rows.append(
                [
                    name,
                    restart.mean_response_time,
                    resume.mean_response_time,
                    restart.mean_response_time / resume.mean_response_time,
                    restart.mean_slowdown / max(resume.mean_slowdown, 1e-9),
                ]
            )
        return rows

    rows = once(compute)
    print()
    print(f"X16b: restart vs resume by workload (simulation, lam={lam})")
    print(
        render_table(
            ["workload", "W restart", "W resume", "W ratio", "slowdown ratio"],
            rows,
        )
    )
    ratios = {r[0]: r[3] for r in rows}
    # resume helps everywhere...
    assert all(v >= 0.98 for v in ratios.values())
    # ...but the quantitative answer to the open problem is the opposite
    # of the naive guess: the restart penalty is LARGEST for exponential
    # demand (timed-out jobs are ordinary, lost work ~ their size) and
    # nearly free for the heavy tails TAGS targets (only huge jobs time
    # out; their repeated work is small relative to their demand) --
    # which is exactly why TAGS can afford kill-and-restart.
    assert ratios["exponential"] > ratios["H2 (Fig 9)"]
    print(
        "\nAnswer to the Section 6 open problem: resume always helps, but"
        "\nthe restart penalty shrinks as the tail gets heavier -- in the"
        "\nheavy-tailed regime TAGS was designed for, kill-and-restart"
        "\ncosts almost nothing, which is why the policy is viable at all."
    )