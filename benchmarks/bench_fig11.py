"""Figure 11: average response time vs proportion of short jobs alpha
(lam=11, mu1 = 10 mu2, TAGS at its optimal t per alpha)."""

import numpy as np

from repro.experiments import figure11, render_figure

ALPHAS = np.round(np.arange(0.89, 0.9999, 0.02), 4)  # 6-point grid


def test_figure11(once):
    fig = once(figure11, ALPHAS)
    print()
    print(render_figure(fig))
    tag = fig.series["TAG (optimal t)"]
    # TAG worsens with alpha; baselines improve (the paper's "reverse trend")
    assert tag[-1] > tag[0]
    assert fig.series["random"][-1] < fig.series["random"][0]
    assert fig.series["shortest queue"][-1] < fig.series["shortest queue"][0]
