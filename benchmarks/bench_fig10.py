"""Figure 10: throughput vs timeout rate, same H2 system as Figure 9."""

import numpy as np

from repro.experiments import figure10, render_figure


def test_figure10(once):
    fig = once(figure10)
    print()
    print(render_figure(fig, max_rows=20))
    x = fig.series["TAG"]
    k = int(np.argmax(x))
    jsq = fig.series["shortest queue"][0]
    k4 = int(np.argmin(np.abs(fig.x - 4.0)))
    print(
        f"\nTAG peak: t={fig.x[k]:.0f}, X={x[k]:.4f}; JSQ X={jsq:.4f}; "
        f"poorly tuned t=4 -> X={x[k4]:.4f}"
    )
    assert x[k] > jsq          # well-tuned TAG beats JSQ
    assert x[k4] < jsq         # poorly tuned TAG loses (paper's t=4 remark)
