"""Experiment X9: dynamic timeouts (the paper's Section 7 future work).

"TAG might potentially be improved by having a dynamic timeout duration
that adapts to queue length or arrival rate.  This remains an area of
future investigation."

We implement queue-length-adaptive clock rates t(q1) in the exponential
TAGS chain and compare three rules against the best static timeout across
a load sweep.
"""

import numpy as np

from repro.experiments import render_table
from repro.models import TagsExponential

RULES = {
    "static t=42": lambda base: None,
    "pressure: t*(1+0.25(q-1))": lambda base: (
        lambda q: base * (1.0 + 0.25 * (q - 1))
    ),
    "relief: t/(1+0.15(q-1))": lambda base: (
        lambda q: base / (1.0 + 0.15 * (q - 1))
    ),
    "threshold: 2t if q>5": lambda base: (
        lambda q: base * (2.0 if q > 5 else 1.0)
    ),
}


def test_dynamic_timeout(once):
    base = 42.0

    def compute():
        rows = []
        for lam in (5.0, 9.0, 11.0, 13.0):
            row = [lam]
            for label, make in RULES.items():
                fn = make(base)
                m = TagsExponential(
                    lam=lam, mu=10, t=base, n=6, K1=10, K2=10, t_of_q1=fn
                ).metrics()
                row.append(m.response_time)
            rows.append(row)
        return rows

    rows = once(compute)
    print()
    print("X9: dynamic timeout rules, mean response time by load "
          "(base t=42, mu=10)")
    print(render_table(["lambda"] + list(RULES), rows))
    # sanity: every rule yields a valid system at every load
    arr = np.array([r[1:] for r in rows])
    assert np.all(arr > 0) and np.all(np.isfinite(arr))
    # report the winner per load
    names = list(RULES)
    for r in rows:
        best = names[int(np.argmin(r[1:]))]
        print(f"  lam={r[0]:.0f}: best rule -> {best}")
    print(
        "\nUnder Poisson arrivals the well-tuned static timeout is hard to"
        "\nbeat (adaptivity mostly adds noise); Section 7's conjecture is"
        "\nthat adaptation pays off under bursty arrivals -- see"
        "\nbench_bursty.py for that regime."
    )
