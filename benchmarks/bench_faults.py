"""Fault-machinery overhead: what does resilience cost when nothing fails?

The design rule for ``repro.faults`` is that the no-fault path stays
free: ``faults=None`` must not perturb either host (the equivalence
tests pin outcomes bit-for-bit), and an *attached but empty* injector
should cost only the per-decision ``inj is not None`` checks plus one
up-front reset.  This file puts numbers on that claim for both hosts,
and measures a realistic supervised fault storm for scale.

Each benchmark reports ``jobs_per_sec`` in ``extra_info``.
"""

from repro.dists import Exponential
from repro.faults import FaultInjector, FaultPlan
from repro.serve import DispatchRuntime, PoissonLoad, Supervisor
from repro.sim import ErlangTimeout, PoissonArrivals, Simulation, TagsPolicy

LAM, MU = 8.0, 10.0
T_END = 1500.0


def _policy():
    return TagsPolicy(timeouts=(ErlangTimeout(6, 51.0),))


def _report(benchmark, state):
    if benchmark.stats is None:  # --benchmark-disable smoke runs
        return
    mean = benchmark.stats.stats.mean
    benchmark.extra_info["jobs"] = state["jobs"]
    benchmark.extra_info["jobs_per_sec"] = state["jobs"] / mean


def _sim_target(faults_factory):
    state = {}

    def target():
        sim = Simulation(
            PoissonArrivals(LAM),
            Exponential(MU),
            _policy(),
            (10, 10),
            seed=0,
            faults=faults_factory(),
        )
        res = sim.run(t_end=T_END)
        state["jobs"] = res.offered
        return res

    return target, state


def test_sim_baseline_no_faults(benchmark):
    """faults=None: the pre-existing fast path, the reference cost."""
    target, state = _sim_target(lambda: None)
    benchmark.pedantic(target, rounds=5, warmup_rounds=1, iterations=1)
    _report(benchmark, state)


def test_sim_empty_injector(benchmark):
    """An attached injector with no events: pure per-decision checks."""
    target, state = _sim_target(lambda: FaultInjector(FaultPlan()))
    benchmark.pedantic(target, rounds=5, warmup_rounds=1, iterations=1)
    _report(benchmark, state)


def test_sim_fault_storm(benchmark):
    """A busy breakdown/repair schedule on both nodes."""
    plan = FaultPlan.generate(
        horizon=T_END, crash_rate=0.02, repair_rate=0.1, nodes=(0, 1), seed=1
    )
    target, state = _sim_target(lambda: FaultInjector(plan))
    benchmark.pedantic(target, rounds=5, warmup_rounds=1, iterations=1)
    _report(benchmark, state)


def _serve_target(faults_factory, supervisor_factory=lambda: None):
    state = {}

    def target():
        rt = DispatchRuntime(
            PoissonLoad(LAM, Exponential(MU)),
            _policy(),
            (10, 10),
            seed=0,
            faults=faults_factory(),
            supervisor=supervisor_factory(),
        )
        res = rt.run(T_END)
        state["jobs"] = res.offered
        return res

    return target, state


def test_serve_baseline_no_faults(benchmark):
    target, state = _serve_target(lambda: None)
    benchmark.pedantic(target, rounds=5, warmup_rounds=1, iterations=1)
    _report(benchmark, state)


def test_serve_empty_injector(benchmark):
    """Empty injector + parked supervisor: the event-driven idle claim
    (a polling supervisor would dominate this number)."""
    target, state = _serve_target(
        lambda: FaultInjector(FaultPlan()),
        lambda: Supervisor(check_interval=1.0),
    )
    benchmark.pedantic(target, rounds=5, warmup_rounds=1, iterations=1)
    _report(benchmark, state)


def test_serve_supervised_storm(benchmark):
    """Crashes, supervised restarts, retries: the full resilience stack."""
    plan = FaultPlan.generate(
        horizon=T_END, crash_rate=0.02, repair_rate=0.1, nodes=(1,), seed=2
    )
    target, state = _serve_target(
        lambda: FaultInjector(plan, degraded="single_node"),
        lambda: Supervisor(check_interval=2.0),
    )
    benchmark.pedantic(target, rounds=5, warmup_rounds=1, iterations=1)
    _report(benchmark, state)
