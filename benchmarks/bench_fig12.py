"""Figure 12: throughput vs proportion of short jobs alpha (same systems
as Figure 11)."""

import numpy as np

from repro.experiments import figure12, render_figure

ALPHAS = np.round(np.arange(0.89, 0.9999, 0.02), 4)


def test_figure12(once):
    fig = once(figure12, ALPHAS)
    print()
    print(render_figure(fig))
    tag = fig.series["TAG (optimal t)"]
    assert tag[-1] < tag[0]  # TAG throughput decreases with alpha
    assert fig.series["random"][-1] > fig.series["random"][0]
    # TAG's gap to JSQ closes towards the balanced (low alpha) end, and
    # TAG out-throughputs random there
    gap = fig.series["shortest queue"] - tag
    assert gap[0] < gap[-1]
    assert tag[0] >= fig.series["random"][0]
