"""Experiment T1: the state-space size claim of Section 5.

"The model specified in Figure 3 is analysed with n = 6 and K1 = K2 = 10.
This gives rise to a model of 4331 states."
"""

from repro.experiments import render_table, state_space_table


def test_figure3_state_space(once):
    tbl = once(state_space_table)
    print()
    print("T1: Figure 3 model state space (n=6, K1=K2=10)")
    print(
        render_table(
            ["quantity", "value"],
            [[k, v] for k, v in tbl.items()],
            float_fmt="{:.0f}",
        )
    )
    assert tbl["measured_states"] == 4331
    assert tbl["formula_states"] == 4331


def test_figure3_compiled_state_space(once):
    """The compiled engine reaches the same 4331 states (Section 5)."""
    from repro.models import build_tags_model
    from repro.models.tags_pepa import TagsParameters
    from repro.pepa.compiled import compile_model

    model = build_tags_model(TagsParameters())
    cs = once(lambda: compile_model(model).explore())
    print()
    print(
        f"T1b: compiled engine, {cs.n_states} states, "
        f"{cs.n_transitions} transitions"
    )
    assert cs.n_states == 4331
