"""Figure 6: average queue length vs timeout rate (lam=5, mu=10, n=6,
K1=K2=10), TAG total/per-queue vs random and shortest queue."""

import numpy as np

from repro.experiments import figure6, render_figure


def test_figure6(once):
    fig = once(figure6)
    print()
    print(render_figure(fig, max_rows=16))
    y = fig.series["TAG total"]
    k = int(np.argmin(y))
    print(f"\nTAG optimal t (queue length): {fig.x[k]:.0f} -> L = {y[k]:.4f}")
    # shape assertions: interior minimum near the paper's t=51, JSQ best
    assert 0 < k < len(y) - 1
    assert 40 <= fig.x[k] <= 60
    assert np.all(fig.series["shortest queue"] <= y + 1e-9)
