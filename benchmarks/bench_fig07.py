"""Figure 7: average response time vs timeout rate (same systems as
Figure 6)."""

import numpy as np

from repro.experiments import figure7, render_figure


def test_figure7(once):
    fig = once(figure7)
    print()
    print(render_figure(fig, max_rows=16))
    w = fig.series["TAG"]
    k = int(np.argmin(w))
    print(f"\nTAG optimal t (response time): {fig.x[k]:.0f} -> W = {w[k]:.4f}")
    # same shape as Fig 6 (loss negligible at lam=5) and JSQ < random < TAG
    assert 40 <= fig.x[k] <= 60
    assert fig.series["shortest queue"][0] < fig.series["random"][0] < w[k]
