"""Experiment X8: time to the first lost job.

Steady-state loss rates (Figures 9-12) hide *when* a system first
misbehaves.  Using the first-passage machinery we compute the expected
time from an empty system until the first dropped job, for each strategy,
exponential demand -- the paper's Section 5 explanation of *why* TAGS
loses jobs differently from JSQ ("shortest queue will lose jobs when both
queues are full ... TAG will lose jobs when either of the queues are
full") made quantitative.
"""

import numpy as np

from repro.ctmc import absorbing_on_action, mean_first_passage_times
from repro.experiments import render_table
from repro.models import RandomAllocation, ShortestQueue, TagsExponential
from repro.models.mm1k import MM1K
from repro.models._bfs import bfs_generator


def _first_loss_time(generator, actions, initial=0) -> float:
    """Expected time from ``initial`` until any action in ``actions``
    fires."""
    g = generator
    sinks = []
    for a in actions:
        g, sink = absorbing_on_action(g, a)
        sinks.append(sink)
    m = mean_first_passage_times(g, sinks)
    return float(m[initial])


def test_time_to_first_loss(once):
    lam, mu, K = 9.0, 10.0, 10

    def compute():
        rows = []
        tags = TagsExponential(lam=lam, mu=mu, t=45.0, n=6, K1=K, K2=K)
        # TAGS drops at node 1 (arrloss) or at node 2 (timeout into a full
        # queue -- those timeout transitions that do not move a job).  The
        # node-2 drop is a self-loop in the chain, i.e. a timeout whose
        # target state equals its source; redirect arrloss only and treat
        # node-2 drops via the labelled self-loops of 'timeout' at full q2.
        t_loss1 = _first_loss_time(tags.generator, ["arrloss"])
        rows.append(["TAGS (node-1 drop)", t_loss1])

        jsq = ShortestQueue(lam=lam, service=mu, K=K)
        rows.append(["shortest queue", _first_loss_time(jsq.generator, ["arrloss"])])

        # random: each node is an independent M/M/1/K; first loss overall
        # is the minimum of two iid first-loss times -- compute on one
        # node's chain and halve is wrong (not exponential), so build the
        # two-node chain directly
        def rnd_succ(s):
            n1, n2 = s
            out = []
            for which, n in ((0, n1), (1, n2)):
                if n < K:
                    nxt = (n1 + 1, n2) if which == 0 else (n1, n2 + 1)
                    out.append(("arrival", lam / 2, nxt))
                else:
                    out.append(("arrloss", lam / 2, s))
                if n >= 1:
                    nxt = (n1 - 1, n2) if which == 0 else (n1, n2 - 1)
                    out.append(("service", mu, nxt))
            return out

        gen, _, _ = bfs_generator((0, 0), rnd_succ)
        rows.append(["random", _first_loss_time(gen, ["arrloss"])])

        rows.append(
            ["single M/M/1/2K (pooled reference)",
             _first_loss_time(
                 _mm1k_gen(lam, mu, 2 * K), ["arrloss"])]
        )
        return rows

    rows = once(compute)
    print()
    print(f"X8: expected time from empty to the first dropped job "
          f"(lam={lam}, mu={mu}, K={K})")
    print(render_table(["strategy", "E[time to first loss]"], rows, float_fmt="{:.1f}"))
    vals = dict((r[0], r[1]) for r in rows)
    # JSQ pools the buffer: it survives orders of magnitude longer than
    # random (the paper's "will lose jobs when both queues are full")
    assert vals["shortest queue"] > 100 * vals["random"]
    # TAGS funnels the whole stream through node 1 (utilisation
    # lam/(mu/(1-p)) ~= 0.63 here vs 0.45 per random node), so its first
    # arrival drop comes *sooner* than random's -- TAGS buys its
    # heavy-tail gains with a busier front queue
    assert vals["TAGS (node-1 drop)"] < vals["random"]
    # and any two-queue strategy beats the pooled single queue at equal
    # total capacity only because the pooled queue sees double the load
    assert vals["random"] > vals["single M/M/1/2K (pooled reference)"]


def _mm1k_gen(lam, mu, K):
    def succ(s):
        (n,) = s
        out = []
        if n < K:
            out.append(("arrival", lam, (n + 1,)))
        else:
            out.append(("arrloss", lam, s))
        if n >= 1:
            out.append(("service", mu, (n - 1,)))
        return out

    gen, _, _ = bfs_generator((0,), succ)
    return gen
