"""Experiment P1: the compile-once/evaluate-many engine.

A 16-point lambda sweep of the Figure 3 model at the paper's size
(n = 6, K1 = K2 = 10, 4331 states).  The interpreter pipeline re-walks
the process-algebra semantics at every grid point; the compiled engine
(:mod:`repro.pepa.compiled`) explores the structure once, then refills
the rate column and the frozen CSR sparsity pattern per point.

Gate: the compiled sweep must be at least 2x faster end-to-end (both
sides include the linear solve, which is the shared floor) while
producing the same metrics.
"""

import time

import numpy as np

from repro.ctmc import action_throughput, steady_state
from repro.models import TagsPepa, build_tags_model
from repro.models.tags_pepa import TagsParameters, _q1_len, _q2_len
from repro.pepa import explore, to_generator
from repro.pepa.compiled import compile_model
from repro.sweep import structure_cache

LAMS = np.linspace(2.0, 9.5, 16)


def _interpreter_point(lam: float):
    space = explore(
        build_tags_model(TagsParameters(lam=lam)), engine="interpreter"
    )
    gen = to_generator(space)
    pi = steady_state(gen)
    L = float(pi @ space.state_reward(_q1_len)) + float(
        pi @ space.state_reward(_q2_len)
    )
    x = action_throughput(gen, pi, "service1") + action_throughput(
        gen, pi, "service2"
    )
    return L, x


def _compiled_point(lam: float):
    m = TagsPepa(lam=lam).metrics()
    return m.mean_jobs, m.throughput


def _timed_sweep(point):
    t0 = time.perf_counter()
    out = [point(float(lam)) for lam in LAMS]
    return time.perf_counter() - t0, out


def test_compile_and_first_explore(once):
    """One compile + vectorized exploration of the full-size model."""
    model = build_tags_model(TagsParameters())
    cs = once(lambda: compile_model(model).explore())
    print()
    print(
        f"P1: compiled exploration, {cs.n_states} states, "
        f"{cs.n_transitions} transitions"
    )
    assert cs.n_states == 4331


def test_sweep_speedup_compiled_vs_interpreter(once):
    """16-point lambda sweep, interpreter vs compiled, >= 2x."""

    def run():
        structure_cache().clear()
        t_interp, m_interp = _timed_sweep(_interpreter_point)
        t_compiled, m_compiled = _timed_sweep(_compiled_point)
        return t_interp, m_interp, t_compiled, m_compiled

    t_interp, m_interp, t_compiled, m_compiled = once(run)
    speedup = t_interp / t_compiled
    print()
    print(
        f"P1: 16-point sweep  interpreter {t_interp:.3f}s  "
        f"compiled {t_compiled:.3f}s  speedup {speedup:.2f}x"
    )
    # same chain solved in a different state order: allclose, not bitwise
    np.testing.assert_allclose(
        np.asarray(m_compiled), np.asarray(m_interp), rtol=1e-8
    )
    assert speedup >= 2.0, (
        f"compiled sweep only {speedup:.2f}x faster than the interpreter "
        f"(interpreter {t_interp:.3f}s, compiled {t_compiled:.3f}s)"
    )


def test_refill_cost_is_marginal(once):
    """Rate refills are orders of magnitude cheaper than exploration."""
    structure_cache().clear()
    TagsPepa(lam=2.0).metrics()  # pay the one-off compile + explore

    def refills():
        for lam in LAMS:
            TagsPepa(lam=float(lam)).metrics()

    once(refills)
    cache = structure_cache()
    assert cache.hits >= len(LAMS)
