"""Experiment X10: the full strategy set, including round robin.

The paper's introduction lists round robin among the candidate
no-information strategies but never evaluates it; we complete the table on
the Figure 7 (exponential) and Figure 9 (H2) settings.
"""

from repro.experiments import render_table
from repro.experiments.config import h2_service_fig9
from repro.models import (
    RandomAllocation,
    RoundRobin,
    ShortestQueue,
    TagsExponential,
    TagsHyperExponential,
)


def test_strategy_table_exponential(once):
    lam, mu, K = 5.0, 10.0, 10

    def compute():
        tag = TagsExponential(lam=lam, mu=mu, t=51.0, n=6, K1=K, K2=K).metrics()
        return [
            ["TAGS (optimal t)", tag.response_time, tag.throughput],
            *(
                [name, m.response_time, m.throughput]
                for name, m in [
                    ("round robin", RoundRobin(lam=lam, service=mu, K=K).metrics()),
                    ("random", RandomAllocation(lam=lam, service=mu, K=K).metrics()),
                    ("shortest queue", ShortestQueue(lam=lam, service=mu, K=K).metrics()),
                ]
            ),
        ]

    rows = once(compute)
    print()
    print(f"X10a: all strategies, exponential demand (lam={lam}, mu={mu})")
    print(render_table(["strategy", "W", "X"], rows))
    vals = {r[0]: r[1] for r in rows}
    # JSQ < RR < random < TAGS for exponential demand
    assert vals["shortest queue"] < vals["round robin"] < vals["random"]
    assert vals["random"] < vals["TAGS (optimal t)"]


def test_strategy_table_h2(once):
    lam, K = 11.0, 10
    service = h2_service_fig9()
    mu1, mu2 = (float(r) for r in service.rates)

    def compute():
        tag = TagsHyperExponential(
            lam=lam, alpha=0.99, mu1=mu1, mu2=mu2, t=10.0, n=6, K1=K, K2=K
        ).metrics()
        return [
            ["TAGS (t=10)", tag.response_time, tag.throughput],
            *(
                [name, m.response_time, m.throughput]
                for name, m in [
                    ("round robin", RoundRobin(lam=lam, service=service, K=K).metrics()),
                    ("random", RandomAllocation(lam=lam, service=service, K=K).metrics()),
                    ("shortest queue", ShortestQueue(lam=lam, service=service, K=K).metrics()),
                ]
            ),
        ]

    rows = once(compute)
    print()
    print("X10b: all strategies, Figure 9's H2 demand (lam=11)")
    print(render_table(["strategy", "W", "X"], rows))
    vals = {r[0]: r[1] for r in rows}
    # heavy tail flips the ordering: TAGS best, blind strategies worst
    assert vals["TAGS (t=10)"] < vals["shortest queue"]
    assert vals["shortest queue"] < vals["random"]
