"""Ablation X2: how deterministic must the Erlang timeout be?

The paper approximates TAGS's deterministic timeout with an Erlang clock
and leaves "the degree of error introduced" as future work.  We sweep the
phase count n at a fixed mean timeout and compare against a discrete-event
simulation with a genuinely deterministic timeout.
"""

import numpy as np

from repro.dists import Exponential
from repro.experiments import render_table
from repro.models import TagsExponential
from repro.sim import DeterministicTimeout, PoissonArrivals, Simulation, TagsPolicy

MEAN_TIMEOUT = 6 / 51  # the Figure 6 optimum's mean duration
LAM, MU = 5.0, 10.0


def test_erlang_phase_sweep(once):
    def compute():
        rows = []
        for n in (1, 2, 4, 6, 12, 24):
            t = n / MEAN_TIMEOUT
            m = TagsExponential(lam=LAM, mu=MU, t=t, n=n).metrics()
            rows.append([n, t, m.mean_jobs, m.response_time, m.extra["n_states"]])
        return rows

    rows = once(compute)

    sim = Simulation(
        PoissonArrivals(LAM),
        Exponential(MU),
        TagsPolicy(timeouts=(DeterministicTimeout(MEAN_TIMEOUT),)),
        (10, 10),
        seed=7,
    )
    res = sim.run(t_end=120_000.0, warmup=5_000.0)

    print()
    print(
        "X2: Erlang phase count vs deterministic timeout "
        f"(mean timeout {MEAN_TIMEOUT:.4f}, lam={LAM}, mu={MU})"
    )
    print(render_table(["n", "t", "mean jobs", "W", "states"], rows))
    print(
        f"\ndeterministic-timeout simulation: L = {res.mean_jobs:.4f}, "
        f"W = {res.mean_response_time:.4f}"
    )
    # convergence: the gap to the deterministic simulation shrinks with n
    gaps = [abs(r[2] - res.mean_jobs) for r in rows]
    assert gaps[-1] < gaps[0]
    assert all(a >= b - 1e-3 for a, b in zip(gaps, gaps[1:]))
    # n = 6 (the paper's choice) is within ~7% of deterministic; n = 24
    # within ~2%
    n6 = next(r for r in rows if r[0] == 6)
    assert abs(n6[2] - res.mean_jobs) / res.mean_jobs < 0.08
    assert gaps[-1] / res.mean_jobs < 0.03
