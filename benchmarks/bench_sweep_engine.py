"""Sweep-engine performance on the Figure 6/7 grid.

Four configurations of the same 30-point sweep (Figure 6's t-grid over the
paper's lam=5, mu=10 TAGS system):

* **serial-cold** -- one worker, empty cache (the seed's behaviour, except
  the seed also solved the grid *twice*, once per figure);
* **parallel** -- the grid fanned out over a process pool;
* **warm-started** -- iterative solver threading each point's ``pi`` into
  the next point's solve;
* **cached** -- an immediate re-run answered from the content-addressed
  cache.

Also regenerates the Figure 6 + Figure 7 *pair* through the shared engine
and checks the headline claim: strictly fewer steady-state solves than the
seed's two independent sweeps, with identical series.
"""

import os
import time

import numpy as np

from repro.experiments import figure6, figure7
from repro.experiments.config import FIG6_PARAMS, FIG6_T_GRID
from repro.models import TagsExponential
from repro.sweep import SweepEngine, default_engine, format_sweep_stats

GRID = [dict(FIG6_PARAMS, t=float(t)) for t in FIG6_T_GRID]
SEED_SOLVES_FOR_PAIR = 2 * (len(FIG6_T_GRID) + 2)
"""The seed solved the sweep + 2 reference models once *per figure*."""


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def test_figure_6_7_pair_shares_solves(once):
    """Fig 6 + Fig 7 through the shared engine: one solve pass, not two."""
    eng = default_engine()
    eng.cache.clear()

    def pair():
        return figure6(), figure7()

    (f6, f7), = [once(pair)]
    solves, hits = eng.cache.misses, eng.cache.hits
    print()
    print(f"seed solves for the pair : {SEED_SOLVES_FOR_PAIR}")
    print(f"engine solves for the pair: {solves} (cache hits: {hits})")
    assert solves < SEED_SOLVES_FOR_PAIR  # strictly fewer than the seed
    assert solves == len(FIG6_T_GRID) + 2  # exactly one solve pass
    assert hits >= len(FIG6_T_GRID)
    # the two figures really describe the same sweep
    k6 = int(np.argmin(f6.series["TAG total"]))
    k7 = int(np.argmin(f7.series["TAG"]))
    assert abs(k6 - k7) <= 1


def test_serial_vs_parallel_vs_cached():
    serial_eng = SweepEngine(workers=1)
    serial, t_serial = _timed(lambda: serial_eng.sweep(TagsExponential, GRID))
    print()
    print(format_sweep_stats(serial, "serial-cold"))

    workers = min(4, max(2, os.cpu_count() or 1))
    par_eng = SweepEngine(workers=workers)
    par, t_par = _timed(lambda: par_eng.sweep(TagsExponential, GRID))
    print(format_sweep_stats(par, f"parallel({workers})"))

    cached, t_cached = _timed(lambda: serial_eng.sweep(TagsExponential, GRID))
    print(format_sweep_stats(cached, "cached-rerun"))
    print(
        f"wall times: serial {t_serial:.3f} s, parallel {t_par:.3f} s, "
        f"cached {t_cached * 1e3:.1f} ms"
    )

    # determinism: parallel series numerically identical to serial
    for metric in ("mean_jobs", "response_time", "throughput"):
        np.testing.assert_allclose(
            par.values(metric), serial.values(metric), rtol=1e-10, atol=0.0
        )
    assert cached.n_solves == 0 and cached.n_hits == len(GRID)
    assert t_cached < t_serial / 20
    if (os.cpu_count() or 1) >= 2:
        # real cores available: the pool must beat the serial pass
        assert t_par < t_serial, (t_par, t_serial)
    else:
        print("single-CPU container: parallel speedup not asserted")


def test_warm_start_cuts_iterations():
    """Adjacent grid points warm-start the iterative solvers."""
    cold_eng = SweepEngine(workers=1, method="power", warm_start=False)
    warm_eng = SweepEngine(workers=1, method="power")
    cold, t_cold = _timed(lambda: cold_eng.sweep(TagsExponential, GRID))
    warm, t_warm = _timed(lambda: warm_eng.sweep(TagsExponential, GRID))
    it_cold = sum(s.iterations for s in cold.stats)
    it_warm = sum(s.iterations for s in warm.stats)
    print()
    print(f"power iterations, cold starts: {it_cold} ({t_cold:.3f} s)")
    print(f"power iterations, warm starts: {it_warm} ({t_warm:.3f} s)")
    assert warm.n_warm_started == len(GRID) - 1
    assert it_warm < it_cold
    np.testing.assert_allclose(
        warm.values("mean_jobs"), cold.values("mean_jobs"), atol=1e-6
    )
