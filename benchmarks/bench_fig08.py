"""Figure 8: average response time vs arrival rate, TAGS at its
queue-length-optimal integer t (paper: t = 51, 49, 45, 42)."""

import numpy as np

from repro.experiments import figure8, render_figure
from repro.experiments.config import FIG8_PAPER_OPTIMAL_T


def test_figure8(once):
    fig = once(figure8)
    print()
    print(render_figure(fig))
    paper_t = [FIG8_PAPER_OPTIMAL_T[lam] for lam in fig.x]
    print(f"\npaper optimal t: {paper_t}")
    print(f"ours  optimal t: {fig.series['optimal t'].astype(int).tolist()}")
    np.testing.assert_allclose(fig.series["optimal t"], paper_t, atol=1.0)
    gap = fig.series["TAG (optimal t)"] - fig.series["shortest queue"]
    assert np.all(gap > 0) and gap[-1] > gap[0]
