"""Ablation X1: the two readings of Figure 3's node-2 timer.

The printed Figure 3 lets the repeat-timer tick during the residual
service; the paper's own state-count formula implies it freezes.  This
bench quantifies how much the interpretation matters across the Figure 6
sweep.
"""

import numpy as np

from repro.experiments import render_table
from repro.models import TagsExponential


def test_tick_during_residual_ablation(once):
    ts = np.arange(10.0, 101.0, 10.0)

    def compute():
        rows = []
        for t in ts:
            frozen = TagsExponential(lam=5, mu=10, t=float(t), n=6).metrics()
            ticking = TagsExponential(
                lam=5, mu=10, t=float(t), n=6, tick_during_residual=True
            ).metrics()
            rows.append(
                [
                    t,
                    frozen.mean_jobs,
                    ticking.mean_jobs,
                    frozen.extra["n_states"],
                    ticking.extra["n_states"],
                ]
            )
        return rows

    rows = once(compute)
    print()
    print("X1: node-2 timer frozen vs ticking during residual (lam=5)")
    print(
        render_table(
            ["t", "L frozen", "L ticking", "states frozen", "states ticking"],
            rows,
        )
    )
    # the frozen encoding is the one matching the paper's 4331 states
    assert rows[0][3] == 4331
    # interpretations agree to first order across the sweep
    for t, lf, lt, _, _ in rows:
        assert abs(lf - lt) / lf < 0.35
