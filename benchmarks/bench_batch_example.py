"""Experiment S1: the Section 1 worked example.

Regenerates every mean response time the paper quotes for the six-job
backlogs {4,5,6,7,3,2} and {99,5,6,7,3,2}.
"""

from repro.experiments import render_table, section1_example


def test_section1_worked_example(once):
    results = once(section1_example)
    rows = [
        [label, paper, ours, abs(ours - paper)]
        for label, (paper, ours) in results.items()
    ]
    print()
    print("S1: Section 1 worked example (mean response time, seconds)")
    print(render_table(["case", "paper", "ours", "abs diff"], rows))
    for label, (paper, ours) in results.items():
        assert abs(ours - paper) < 0.01, label
