"""Experiment X3: bursty arrivals (the paper's Section 7 conjecture).

"It is expected that TAG would perform less well if the arrival process
was bursty.  If bursts consisted solely of short jobs then this would
affect TAG more than the shortest queue strategy."

We compare TAGS and JSQ under Poisson and under an on/off IPP with the
same mean rate, H2 demands, by simulation.
"""

import numpy as np

from repro.experiments import render_table
from repro.experiments.config import h2_service_fig9
from repro.sim import (
    DeterministicTimeout,
    JSQPolicy,
    MMPPArrivals,
    PoissonArrivals,
    Simulation,
    TagsPolicy,
    replicate,
)

LAM = 8.0
T_END, WARMUP, REPS = 30_000.0, 2_000.0, 3


def _run(policy_factory, arrivals_factory):
    service = h2_service_fig9()
    out = replicate(
        lambda seed: Simulation(
            arrivals_factory(), service, policy_factory(), (10, 10), seed=seed
        ),
        n_reps=REPS,
        t_end=T_END,
        warmup=WARMUP,
    )
    return out["means"]


def test_bursty_arrivals(once):
    def compute():
        tags = lambda: TagsPolicy(timeouts=(DeterministicTimeout(0.5),))
        jsq = lambda: JSQPolicy()
        poisson = lambda: PoissonArrivals(LAM)
        # on/off bursts, same mean rate, peak 3x
        ipp = lambda: MMPPArrivals(
            rate0=3 * LAM, rate1=0.0, switch01=1.0, switch10=0.5
        )
        return {
            ("TAGS", "poisson"): _run(tags, poisson),
            ("TAGS", "bursty"): _run(tags, ipp),
            ("JSQ", "poisson"): _run(jsq, poisson),
            ("JSQ", "bursty"): _run(jsq, ipp),
        }

    results = once(compute)
    rows = [
        [pol, arr, m["mean_response_time"], m["throughput"], m["loss_probability"]]
        for (pol, arr), m in results.items()
    ]
    print()
    print(f"X3: bursty (IPP) vs Poisson arrivals, H2 demand, lam={LAM}")
    print(render_table(["policy", "arrivals", "W", "X", "loss prob"], rows))

    # burstiness hurts both policies...
    for pol in ("TAGS", "JSQ"):
        assert (
            results[(pol, "bursty")]["loss_probability"]
            > results[(pol, "poisson")]["loss_probability"]
        )
    # ...and the paper's conjecture: TAGS degrades at least as much as JSQ
    # in relative loss terms
    def degradation(pol):
        b = results[(pol, "bursty")]["loss_probability"]
        p = max(results[(pol, "poisson")]["loss_probability"], 1e-6)
        return b / p

    print(
        f"\nloss degradation factor: TAGS {degradation('TAGS'):.1f}x, "
        f"JSQ {degradation('JSQ'):.1f}x"
    )


def test_bursty_arrivals_exact_ctmc(once):
    """The same question settled exactly: MMPP-modulated TAGS and JSQ
    chains (exponential service) across burstiness levels."""
    from repro.models import MMPP2, ShortestQueueMMPP, TagsMMPP

    lam = 9.0

    def compute():
        rows = []
        for burst in (1.0, 2.0, 3.0, 5.0):
            if burst == 1.0:
                arr = MMPP2.poisson(lam)
            else:
                arr = MMPP2(burst * lam, 0.0, 1.0, 1.0 / (burst - 1)).scaled_to_mean(lam)
            tags = TagsMMPP(arrivals=arr, mu=10, t=45, n=6, K1=10, K2=10).metrics()
            jsq = ShortestQueueMMPP(arrivals=arr, mu=10, K=10).metrics()
            rows.append(
                [burst, tags.loss_probability, jsq.loss_probability,
                 tags.response_time, jsq.response_time]
            )
        return rows

    rows = once(compute)
    print()
    print(f"X3b: exact MMPP chains, exponential service, mean rate {lam}")
    print(
        render_table(
            ["peak/mean", "TAGS loss p", "JSQ loss p", "TAGS W", "JSQ W"],
            rows,
            float_fmt="{:.5f}",
        )
    )
    # loss grows with burstiness for both policies
    tags_losses = [r[1] for r in rows]
    jsq_losses = [r[2] for r in rows]
    assert all(a <= b + 1e-12 for a, b in zip(tags_losses, tags_losses[1:]))
    assert all(a <= b + 1e-12 for a, b in zip(jsq_losses, jsq_losses[1:]))
    # Section 7: TAGS suffers at least as much absolute loss as JSQ at
    # every burstiness level (it cannot share the burst across nodes)
    assert all(r[1] >= r[2] - 1e-12 for r in rows)
