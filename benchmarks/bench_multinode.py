"""Experiment X7: the N-node extension ("a simple matter to add more
nodes", Section 3).

Compares 2-node and 3-node TAGS chains on the same offered load and
capacity budget, with balance-informed timeouts.
"""

from repro.experiments import render_table
from repro.models import TagsExponential, TagsMultiNode


def test_three_node_chain(once):
    lam, mu = 9.0, 10.0

    def compute():
        two = TagsMultiNode(
            lam=lam, mu=mu, timeouts=(45.0,), n=4, capacities=(6, 6)
        ).metrics()
        three = TagsMultiNode(
            lam=lam, mu=mu, timeouts=(45.0, 22.0), n=4, capacities=(4, 4, 4)
        ).metrics()
        return two, three

    two, three = once(compute)
    print()
    print(f"X7: multi-node TAGS, lam={lam}, mu={mu} (equal total capacity 12)")
    rows = [
        ["2 nodes", two.mean_jobs, two.throughput, two.response_time, two.extra["n_states"]],
        ["3 nodes", three.mean_jobs, three.throughput, three.response_time, three.extra["n_states"]],
    ]
    print(render_table(["chain", "L", "X", "W", "states"], rows))
    # flow conservation in both
    assert abs(two.throughput + two.loss_rate - lam) < 1e-8
    assert abs(three.throughput + three.loss_rate - lam) < 1e-8


def test_two_node_consistency(once):
    """The generic N-node builder must reproduce the dedicated 2-node
    model exactly."""

    def compute():
        mn = TagsMultiNode(
            lam=5.0, mu=10.0, timeouts=(51.0,), n=6, capacities=(10, 10)
        ).metrics()
        te = TagsExponential(lam=5, mu=10, t=51, n=6, K1=10, K2=10).metrics()
        return mn, te

    mn, te = once(compute)
    print()
    print("X7b: generic N-node builder vs Figure 3 model")
    print(
        render_table(
            ["model", "L", "X", "states"],
            [
                ["multinode N=2", mn.mean_jobs, mn.throughput, mn.extra["n_states"]],
                ["figure 3", te.mean_jobs, te.throughput, te.extra["n_states"]],
            ],
        )
    )
    assert abs(mn.mean_jobs - te.mean_jobs) < 1e-9
    assert mn.extra["n_states"] == te.extra["n_states"]
