"""Experiment X14: response-time distributions via tagged jobs.

The paper reports only mean response times; a tagged-job absorbing chain
yields the full distribution.  The headline: at the Figure 6 optimum the
mean hides a strongly bimodal sojourn -- jobs completing at node 1 take
~1 mean service, restarted jobs take an order of magnitude longer -- and
the Little's-law decomposition over exit classes holds exactly.
"""

import numpy as np

from repro.experiments import render_table
from repro.models import TagsExponential
from repro.models.tagged import TaggedJobAnalysis


def test_response_time_distribution(once):
    lam, mu, t, n, K = 5.0, 10.0, 51.0, 6, 10

    def compute():
        model = TagsExponential(lam=lam, mu=mu, t=t, n=n, K1=K, K2=K)
        tagged = TaggedJobAnalysis(model)
        probs = tagged.outcome_probabilities()
        means = tagged.mean_response_by_outcome()
        xs = np.array([0.05, 0.1, 0.2, 0.4, 0.8, 1.6])
        cdf = tagged.response_cdf(xs)
        return model.metrics(), probs, means, xs, cdf

    metrics, probs, means, xs, cdf = once(compute)
    print()
    print(f"X14: tagged-job analysis at the Figure 6 optimum (t={t:g})")
    print(
        render_table(
            ["outcome", "probability", "E[T | outcome]"],
            [[k, probs.get(k, 0.0), means.get(k, float('nan'))]
             for k in ("done1", "done2", "dropped")],
        )
    )
    print()
    print(render_table(["x", "P[T <= x | completed]"], list(zip(xs, cdf))))

    # exact Little decomposition
    accepted = metrics.offered_load - metrics.loss_per_node[0]
    L = accepted * sum(
        probs[k] * means[k] for k in probs if probs[k] > 0
    )
    print(f"\nLittle check: reconstructed L = {L:.6f} "
          f"vs steady-state L = {metrics.mean_jobs:.6f}")
    np.testing.assert_allclose(L, metrics.mean_jobs, rtol=1e-6)

    # the bimodality the mean hides
    assert means["done2"] > 4 * means["done1"]
    # ~2/3 of jobs finish at node 1 at these parameters
    assert 0.5 < probs["done1"] < 0.8