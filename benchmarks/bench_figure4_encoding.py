"""Experiment X12: the Figure 4 per-place encoding, analysed by counting.

Section 3.1 presents the per-place model as an alternative amenable to
count-based analysis.  We explore its exact identity-free quotient
(CountedModel), compare against both Figure 3 variants, and run the fluid
ODE limit -- quantifying what the paper's "alternative representation"
actually changes (blocking instead of dropping at node 2; pipelined repeat
clock).
"""

from repro.experiments import render_table
from repro.models import Figure4Model, TagsExponential


def test_figure4_vs_figure3(once):
    lam, mu, t, n, K = 5.0, 10.0, 51.0, 6, 10

    def compute():
        f4 = Figure4Model(lam=lam, mu=mu, t=t, n=n, K1=K, K2=K)
        m4 = f4.metrics()
        frozen = TagsExponential(lam=lam, mu=mu, t=t, n=n, K1=K, K2=K).metrics()
        ticking = TagsExponential(
            lam=lam, mu=mu, t=t, n=n, K1=K, K2=K, tick_during_residual=True
        ).metrics()
        fluid_eq = f4.fluid().equilibrium(t_end=300.0)
        fluid_L = (
            fluid_eq["q1_places.Q1_1"]
            + fluid_eq["q2_places.Q2_1"]
            + fluid_eq["q2_places.Q2r"]
        )
        return m4, frozen, ticking, fluid_L

    m4, frozen, ticking, fluid_L = once(compute)
    print()
    print("X12: Figure 4 per-place encoding vs Figure 3 (lam=5, t=51, n=6)")
    rows = [
        ["Figure 3 (frozen timer)", frozen.mean_jobs, frozen.throughput,
         frozen.extra["n_states"]],
        ["Figure 3 (ticking timer)", ticking.mean_jobs, ticking.throughput,
         ticking.extra["n_states"]],
        ["Figure 4 counted quotient", m4.mean_jobs, m4.throughput,
         m4.extra["n_states"]],
        ["Figure 4 fluid ODE", fluid_L, float("nan"), 0],
    ]
    print(render_table(["encoding", "L", "X", "states"], rows))
    # throughputs agree to < 1%; Figure 4's population falls *between* the
    # two Figure 3 readings (its repeat clock pipelines like the ticking
    # variant but stalls at Timer2_0 like the frozen one)
    assert abs(m4.throughput - frozen.throughput) / frozen.throughput < 0.01
    lo, hi = sorted((ticking.mean_jobs, frozen.mean_jobs))
    assert lo <= m4.mean_jobs <= hi
    # the fluid limit underestimates the stochastic queue
    assert fluid_L <= m4.mean_jobs
