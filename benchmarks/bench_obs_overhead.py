"""Obs overhead: the disabled path must be free, the enabled path cheap.

Benchmarks the worst-instrumented hot path -- an iterative solver that
checks the recorder every sweep and emits a full residual trace when one
is listening -- three ways:

* ``recorder_off``: the default :class:`~repro.obs.NullRecorder`
  (the <2% bar for disabled observability; compare against
  ``bench_solvers.py`` numbers from before the obs layer);
* ``recorder_on``: a live :class:`~repro.obs.Recorder` (the CI
  ``obs-overhead`` job allows at most 10% over the disabled path);
* ``sweep_recorded``: a recorded engine sweep, to size the span/counter
  cost per grid point.

The CI job gets its off/on numbers by running ``bench_solvers.py`` twice
(without/with ``REPRO_OBS=record``); this file is the local,
single-command equivalent.
"""

import pytest

from repro import obs
from repro.ctmc.steady import steady_state_gauss_seidel
from repro.models import TagsExponential
from repro.sweep import SweepEngine


@pytest.fixture(scope="module")
def fig3_chain():
    return TagsExponential(lam=5, mu=10, t=51, n=6, K1=10, K2=10).generator


def test_recorder_off(benchmark, fig3_chain):
    assert not obs.recorder().enabled
    benchmark(steady_state_gauss_seidel, fig3_chain)


def test_recorder_on(benchmark, fig3_chain):
    def solve():
        with obs.use(obs.Recorder()):
            steady_state_gauss_seidel(fig3_chain)

    benchmark(solve)


def test_sweep_recorded(benchmark):
    grid = [
        dict(lam=5.0, mu=10.0, n=6, K1=4, K2=4, t=float(t))
        for t in range(10, 111, 20)
    ]

    def sweep():
        with obs.use(obs.Recorder()) as rec:
            SweepEngine(workers=1, cache=False).sweep(TagsExponential, grid)
        return rec

    rec = benchmark(sweep)
    assert len(rec.find_spans("sweep.point")) == len(grid)


def test_disabled_path_records_nothing(fig3_chain):
    """Sanity, not timing: with the null recorder no buffers grow."""
    rec = obs.recorder()
    assert not rec.enabled
    steady_state_gauss_seidel(fig3_chain)
    assert rec.spans == [] and rec.counters == {} and rec.traces == []
