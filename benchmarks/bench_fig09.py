"""Figure 9: average response time vs timeout rate, H2 service
(lam=11, alpha=0.99, mean demand 0.1, mu1=100 mu2), TAG vs shortest
queue."""

import numpy as np

from repro.experiments import figure9, render_figure


def test_figure9(once):
    fig = once(figure9)
    print()
    print(render_figure(fig, max_rows=20))
    w = fig.series["TAG"]
    k = int(np.argmin(w))
    jsq = fig.series["shortest queue"][0]
    wins = w < jsq
    print(
        f"\nTAG optimum: t={fig.x[k]:.0f}, W={w[k]:.4f}; JSQ W={jsq:.4f}; "
        f"TAG wins on {wins.sum()}/{len(wins)} grid points"
    )
    assert w[k] < jsq
    assert wins.mean() > 0.3  # "a wide range of values of t"
