"""Ablation X5: fluid (ODE) analysis of the Figure 4 per-place model.

Section 3.1 proposes re-encoding each queue place as its own component so
the model is "potentially amenable to a form of analysis based on ordinary
differential equations" (Hillston, QEST 2005 / the Dizzy tool).  We build
a replicated-place M/M/1/K in that style, run the fluid approximation and
compare its equilibrium occupancy against the exact CTMC -- quantifying
what the ODE shortcut trades away at CTMC-scale populations and how it
improves as the system is scaled up (more places + proportional service
capacity).
"""

import numpy as np

from repro.experiments import render_table
from repro.models import MM1K
from repro.pepa import FluidGroup, FluidModel, parse_model


def _queue_model(lam: float, mu: float):
    """Figure 4-style encoding: K passive places + an active server."""
    return parse_model(
        f"""
        lam = {lam}; mu = {mu};
        P0 = (arrive, infty).P1;
        P1 = (serve, infty).P0;
        S = (arrive, lam).S + (serve, mu).S;
        S;
        """
    )


def test_fluid_vs_exact(once):
    lam, mu, K = 5.0, 10.0, 10

    def compute():
        m = _queue_model(lam, mu)
        fm = FluidModel(
            m,
            [FluidGroup("places", {"P0": float(K)}), FluidGroup("server", {"S": 1.0})],
            synced={"arrive", "serve"},
        )
        eq = fm.equilibrium(t_end=400.0)
        return eq["places.P1"]

    fluid_occupancy = once(compute)
    exact = MM1K(lam, mu, K).mean_jobs
    print()
    print("X5: fluid (ODE) vs exact CTMC, M/M/1/10 in the per-place encoding")
    print(
        render_table(
            ["quantity", "value"],
            [
                ["fluid occupied places", fluid_occupancy],
                ["exact mean queue length", exact],
                ["abs error", abs(fluid_occupancy - exact)],
            ],
        )
    )
    # the fluid limit of a single-server queue at rho=0.5 under-estimates
    # stochastic queueing (it sees no variance) but must land in [rho, L]
    assert lam / mu <= fluid_occupancy <= exact + 0.05


def test_fluid_scales_with_population(once):
    """The fluid approximation is asymptotically exact as the population
    grows: compare C servers + C*K places against the same per-capacity
    load served by C independent M/M/1/K queues."""
    lam, mu, K = 5.0, 10.0, 10

    def compute():
        rows = []
        for C in (1, 10, 100):
            # per-server arrival rate held constant; C servers, C*K places
            m = _queue_model(lam, mu)
            fm = FluidModel(
                m,
                [
                    FluidGroup("places", {"P0": float(K * C)}),
                    FluidGroup("server", {"S": float(C)}),
                ],
                synced={"arrive", "serve"},
            )
            eq = fm.equilibrium(t_end=400.0)
            rows.append([C, eq["places.P1"] / C])
        return rows

    rows = once(compute)
    print()
    print("X5b: fluid occupancy per server as the system scales")
    print(render_table(["C (scale)", "occupied per server"], rows))
    # scale-invariant in this symmetric model: the fluid equations are
    # homogeneous of degree one in the population
    vals = [r[1] for r in rows]
    assert max(vals) - min(vals) < 1e-6
