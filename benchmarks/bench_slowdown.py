"""Experiment X11: mean slowdown by job class (Harchol-Balter's metric).

The paper's reference [5] evaluates TAGS on *mean slowdown*
(response/demand) because heavy tails make raw response time blind to the
short-job experience.  We measure per-class slowdown by simulation on the
Figure 9 workload: TAGS should protect the 99% of short jobs at the
expense of the 1% long ones, while JSQ and random mix the classes.
"""

import numpy as np

from repro.experiments import render_table
from repro.experiments.config import h2_service_fig9
from repro.sim import (
    DeterministicTimeout,
    JSQPolicy,
    PoissonArrivals,
    RandomPolicy,
    Simulation,
    TagsPolicy,
)

LAM = 10.0
T_END, WARMUP = 60_000.0, 3_000.0
SERVICE = h2_service_fig9()
SHORT_THRESHOLD = 0.5  # >= 5 mean short-job sizes, << long-job mean


def _run(policy, seed):
    sim = Simulation(
        PoissonArrivals(LAM), SERVICE, policy, (10, 10), seed=seed
    )
    return sim.run(t_end=T_END, warmup=WARMUP)


def test_slowdown_fairness(once):
    def compute():
        return {
            "TAGS (tau=0.6)": _run(
                TagsPolicy(timeouts=(DeterministicTimeout(0.6),)), 1
            ),
            "JSQ": _run(JSQPolicy(), 2),
            "random": _run(RandomPolicy(), 3),
        }

    results = once(compute)
    rows = []
    for name, res in results.items():
        s_short, s_long = res.mean_slowdown_by_class(SHORT_THRESHOLD)
        rows.append(
            [
                name,
                res.mean_slowdown,
                s_short,
                s_long,
                res.slowdown_percentile(95),
            ]
        )
    print()
    print(
        f"X11: slowdown by class, H2 demand (99% short), lam={LAM} "
        f"(short = demand <= {SHORT_THRESHOLD})"
    )
    print(
        render_table(
            ["policy", "mean slowdown", "short jobs", "long jobs", "p95"],
            rows,
        )
    )
    by = {r[0]: r for r in rows}
    # TAGS gives short jobs a better slowdown than either blind baseline
    assert by["TAGS (tau=0.6)"][2] < by["random"][2]
    # and pays for it on the long jobs (they repeat their timeout work)
    assert by["TAGS (tau=0.6)"][3] > by["JSQ"][3]
