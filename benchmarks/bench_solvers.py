"""Ablation X4: steady-state solver comparison on the paper's CTMCs.

Times each solver on the Figure 3 chain (4331 states) and checks they
agree.  This is the one file using pytest-benchmark's statistics in the
conventional way (several rounds), since individual solves are fast.
"""

import numpy as np
import pytest

from repro.ctmc.steady import (
    steady_state_direct,
    steady_state_gauss_seidel,
    steady_state_gmres,
    steady_state_gth,
    steady_state_power,
)
from repro.models import TagsExponential

SOLVERS = {
    "gth": steady_state_gth,
    "direct": steady_state_direct,
    "power": steady_state_power,
    "gauss_seidel": steady_state_gauss_seidel,
    "gmres": steady_state_gmres,
}


@pytest.fixture(scope="module")
def fig3_chain():
    model = TagsExponential(lam=5, mu=10, t=51, n=6, K1=10, K2=10)
    gen = model.generator
    reference = steady_state_direct(gen)
    return gen, reference


@pytest.mark.parametrize("name", sorted(SOLVERS))
def test_solver(benchmark, fig3_chain, name):
    gen, reference = fig3_chain
    solver = SOLVERS[name]
    pi = benchmark(solver, gen)
    np.testing.assert_allclose(pi, reference, atol=1e-6)
