"""Experiments A1/A2: the Section 4 approximations.

A1: the balance-equation outputs the paper quotes (T ~ 6.17 exponential;
the Erlang balance rate growing towards a total rate of ~9 at mu=10).
A2: the bounded-queue fixed point versus the exact CTMC, and the quality
of its optimal-timeout estimate.
"""

import numpy as np

from repro.approx import (
    TagsFixedPoint,
    erlang_balance_rate,
    exponential_balance_rate,
    optimise_timeout,
)
from repro.experiments import render_table
from repro.models import TagsExponential


def test_balance_equations(once):
    def compute():
        rows = [["exponential", 1, exponential_balance_rate(10.0), "-"]]
        for n in (2, 6, 12, 50, 400):
            t = erlang_balance_rate(10.0, n)
            rows.append([f"Erlang n={n}", n, t, t / n])
        return rows

    rows = once(compute)
    print()
    print("A1: Section 4 balance equations (mu = 10)")
    print(render_table(["clock", "n", "balance t", "total rate t/n"], rows))
    assert abs(rows[0][2] - 6.18) < 0.01        # paper: ~6.17
    assert abs(rows[-1][3] - 8.7) < 0.2         # paper: "around 9"


def test_fixed_point_vs_exact(once):
    def compute():
        rows = []
        for t in (5.0, 20.0, 42.0, 52.0, 100.0, 300.0):
            fp = TagsFixedPoint(lam=11, mu=10, t=t, n=6).metrics()
            ex = TagsExponential(lam=11, mu=10, t=t, n=6).metrics()
            rows.append([t, ex.throughput, fp.throughput, ex.mean_jobs, fp.mean_jobs])
        return rows

    rows = once(compute)
    print()
    print("A2: fixed point vs exact CTMC (lam=11, mu=10, n=6)")
    print(
        render_table(
            ["t", "X exact", "X approx", "L exact", "L approx"], rows
        )
    )
    for t, xe, xa, le, la in rows:
        assert abs(xa - xe) / xe < 0.02

    res_fp = optimise_timeout(
        lambda t: TagsFixedPoint(lam=11, mu=10, t=t, n=6), "throughput",
        t_min=2.0, t_max=300.0,
    )
    res_ex = optimise_timeout(
        lambda t: TagsExponential(lam=11, mu=10, t=t, n=6), "throughput",
        t_min=5.0, t_max=200.0, grid_points=12,
    )
    print(
        f"\nthroughput-optimal t: fixed point {res_fp.t_opt:.1f} "
        f"vs exact {res_ex.t_opt:.1f}"
    )
    assert abs(res_fp.t_opt - res_ex.t_opt) < 5.0
