"""Shared benchmark helpers.

Every benchmark regenerates one experiment from the paper (see the
experiment index in DESIGN.md), prints the series the paper plots, and
times the regeneration through pytest-benchmark.  Expensive figure sweeps
run exactly once (``rounds=1``): the timing of interest is "how long does
reproducing this figure take", not a micro-benchmark statistic.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the target exactly once under the benchmark clock."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
