"""Experiment X15: compositional (Kronecker) vs explicit state-space
construction.

Same CTMC two ways: breadth-first exploration of the global derivation
graph versus Kronecker assembly from the components' local matrices.
The Kronecker route never touches the global state space until the final
reachability restriction, which is the classic scalability argument for
compositional methods -- quantified here on the paper's own model.
"""

import numpy as np
import pytest

from repro.ctmc import steady_state
from repro.models.tags_pepa import TagsParameters, build_tags_model
from repro.pepa import explore, kron_generator, to_generator

PARAMS = TagsParameters(lam=5, mu=10, t=51.0, n=6, K1=10, K2=10)


@pytest.fixture(scope="module")
def model():
    return build_tags_model(PARAMS)


def test_explicit_exploration(benchmark, model):
    gen = benchmark(lambda: to_generator(explore(model)))
    assert gen.n_states == 4331


def test_kron_assembly(benchmark, model):
    gen, _ = benchmark(lambda: kron_generator(model))
    assert gen.n_states == 4331


def test_agreement(model):
    gen_k, _ = kron_generator(model)
    gen_e = to_generator(explore(model))
    np.testing.assert_allclose(
        sorted(steady_state(gen_k)), sorted(steady_state(gen_e)), atol=1e-10
    )
