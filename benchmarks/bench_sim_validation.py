"""Experiment X6: CTMC vs discrete-event simulation.

Three regimes:
1. Erlang timeout + exponential service: the simulator executes exactly
   the Figure 3 CTMC -> tight agreement expected.
2. Erlang timeout + H2 service: the CTMC resamples the repeat period and
   marginalises the timed-out job's phase (alpha'); the simulator keeps
   the true correlation -> small systematic gap expected.
3. Deterministic timeout + bounded-Pareto demand (Harchol-Balter's actual
   workload): outside PEPA's reach entirely; the H2 CTMC serves as the
   Markovian surrogate the paper argues "broadly corresponds".
"""

import numpy as np

from repro.dists import BoundedPareto, Exponential
from repro.experiments import render_table
from repro.experiments.config import h2_service_fig9
from repro.models import TagsExponential, TagsHyperExponential
from repro.sim import (
    DeterministicTimeout,
    ErlangTimeout,
    PoissonArrivals,
    Simulation,
    TagsPolicy,
)

T_END, WARMUP = 60_000.0, 3_000.0


def test_exponential_agreement(once):
    lam, mu, t, n = 5.0, 10.0, 51.0, 6

    def compute():
        sim = Simulation(
            PoissonArrivals(lam),
            Exponential(mu),
            TagsPolicy(timeouts=(ErlangTimeout(n, t),)),
            (10, 10),
            seed=11,
        )
        return sim.run(t_end=T_END, warmup=WARMUP)

    res = once(compute)
    exact = TagsExponential(lam=lam, mu=mu, t=t, n=n).metrics()
    print()
    print("X6a: CTMC vs simulation, exponential service, Erlang timeout")
    print(
        render_table(
            ["metric", "CTMC", "simulation"],
            [
                ["mean jobs", exact.mean_jobs, res.mean_jobs],
                ["throughput", exact.throughput, res.throughput],
                ["response time", exact.response_time, res.mean_response_time],
            ],
        )
    )
    np.testing.assert_allclose(res.mean_jobs, exact.mean_jobs, rtol=0.06)
    np.testing.assert_allclose(res.throughput, exact.throughput, rtol=0.02)


def test_h2_agreement(once):
    service = h2_service_fig9()
    mu1, mu2 = service.rates
    lam, t, n = 11.0, 15.0, 6

    def compute():
        sim = Simulation(
            PoissonArrivals(lam),
            service,
            TagsPolicy(timeouts=(ErlangTimeout(n, t),)),
            (10, 10),
            seed=13,
        )
        return sim.run(t_end=T_END, warmup=WARMUP)

    res = once(compute)
    exact = TagsHyperExponential(
        lam=lam, alpha=0.99, mu1=float(mu1), mu2=float(mu2), t=t, n=n
    ).metrics()
    print()
    print("X6b: CTMC vs simulation, H2 service (alpha' marginalisation)")
    print(
        render_table(
            ["metric", "CTMC", "simulation"],
            [
                ["mean jobs", exact.mean_jobs, res.mean_jobs],
                ["throughput", exact.throughput, res.throughput],
                ["response time", exact.response_time, res.mean_response_time],
            ],
        )
    )
    # the alpha' decoupling is an approximation: allow ~15%
    np.testing.assert_allclose(res.mean_jobs, exact.mean_jobs, rtol=0.15)
    np.testing.assert_allclose(res.throughput, exact.throughput, rtol=0.05)


def test_bounded_pareto(once):
    """The real Harchol-Balter workload with a deterministic timeout."""
    bp = BoundedPareto(0.0325, 100.0, 1.1)  # mean ~0.1, very heavy tail

    def compute():
        sim = Simulation(
            PoissonArrivals(8.0),
            bp,
            TagsPolicy(timeouts=(DeterministicTimeout(0.3),)),
            (10, 10),
            seed=17,
        )
        return sim.run(t_end=T_END, warmup=WARMUP)

    res = once(compute)
    print()
    print(
        "X6c: bounded-Pareto demand (mean "
        f"{bp.mean:.3f}, scv {bp.scv:.1f}), deterministic timeout 0.3"
    )
    print(
        render_table(
            ["metric", "simulation"],
            [
                ["mean jobs", res.mean_jobs],
                ["throughput", res.throughput],
                ["response time", res.mean_response_time],
                ["mean slowdown", res.mean_slowdown],
                ["loss probability", res.loss_probability],
            ],
        )
    )
    assert res.completed > 1000
    assert res.mean_slowdown > 1.0
