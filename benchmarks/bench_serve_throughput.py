"""Dispatcher throughput: decisions per second under the virtual clock.

The serve runtime's cost per job is one routing decision, one timeout
draw, up to one kill/forward, and the asyncio bookkeeping in between --
this file measures how many such decisions the event loop sustains in
virtual-clock mode (no real sleeping, so the numbers are pure dispatch
overhead).

The CI ``serve`` job runs this file twice (without/with
``REPRO_OBS=record``) into ``BENCH_SERVE_OFF.json`` /
``BENCH_SERVE_ON.json`` and enforces the library-wide rule that enabled
observability costs at most 10% -- so nothing here may assert on the
recorder's state.  Each round drains the recorder afterwards, the way a
deployment ships spans out (``drain()``/``write_jsonl`` + ``clear()``):
letting one process accumulate every span from every round would
benchmark the garbage collector walking an unbounded buffer, a cost no
draining consumer pays.

Every benchmark reports ``decisions_per_sec`` in ``extra_info``
(decisions = routed arrivals + kill/forward events).
"""

import pytest

from repro import obs
from repro.dists import Exponential, h2_balanced_means
from repro.serve import DispatchRuntime, PoissonLoad, Trace, TraceLoad
from repro.sim import (
    ErlangTimeout,
    JSQPolicy,
    PoissonArrivals,
    TagsPolicy,
)

MU = 10.0


def run_and_count(make_runtime, t_end):
    """Factory for the benchmark target: fresh runtime each round."""
    state = {}

    def target():
        rt = make_runtime()
        res = rt.run(t_end)
        state["decisions"] = res.offered + res.killed
        rec = obs.recorder()
        if rec.enabled:
            rec.clear()  # per-round cost, not unbounded accumulation
        return res

    return target, state


def report(benchmark, state):
    mean = benchmark.stats.stats.mean
    benchmark.extra_info["decisions"] = state["decisions"]
    benchmark.extra_info["decisions_per_sec"] = state["decisions"] / mean


def test_tags_dispatch(benchmark):
    """The paper's policy: TAGS with an Erlang timeout, moderate kills."""
    target, state = run_and_count(
        lambda: DispatchRuntime(
            PoissonLoad(8.0, Exponential(MU)),
            TagsPolicy(timeouts=(ErlangTimeout(6, 51.0),)),
            (10, 10),
            seed=0,
        ),
        t_end=1500.0,
    )
    benchmark.pedantic(target, rounds=5, warmup_rounds=1, iterations=1)
    report(benchmark, state)


def test_tags_kill_storm(benchmark):
    """Worst case for the runtime: a heavy-tail workload with a short
    timeout, so nearly every long job generates a second dispatch."""
    target, state = run_and_count(
        lambda: DispatchRuntime(
            PoissonLoad(8.0, h2_balanced_means(0.1, 0.99, 100.0)),
            TagsPolicy(timeouts=(ErlangTimeout(6, 50.0),)),
            (10, 10),
            seed=1,
        ),
        t_end=1500.0,
    )
    benchmark.pedantic(target, rounds=5, warmup_rounds=1, iterations=1)
    report(benchmark, state)


def test_jsq_dispatch(benchmark):
    """No timeouts: pure route-enqueue-serve throughput."""
    target, state = run_and_count(
        lambda: DispatchRuntime(
            PoissonLoad(9.0, Exponential(MU)),
            JSQPolicy(),
            (10, 10),
            seed=2,
        ),
        t_end=1500.0,
    )
    benchmark.pedantic(target, rounds=5, warmup_rounds=1, iterations=1)
    report(benchmark, state)


@pytest.fixture(scope="module")
def replay_trace():
    return Trace.synthesise(
        PoissonArrivals(8.0), Exponential(MU), 10_000, seed=3
    )


def test_trace_replay(benchmark, replay_trace):
    """Replay mode (the equivalence-gate configuration)."""
    state = {}

    def target():
        rt = DispatchRuntime(
            TraceLoad(replay_trace),
            TagsPolicy(timeouts=(ErlangTimeout(6, 51.0),)),
            (10, 10),
            seed=4,
        )
        res = rt.run(1e12)
        state["decisions"] = res.offered + res.killed
        rec = obs.recorder()
        if rec.enabled:
            rec.clear()
        return res

    res = benchmark.pedantic(target, rounds=5, warmup_rounds=1, iterations=1)
    assert res.offered == len(replay_trace)
    report(benchmark, state)
